package specdsm_test

import (
	"bytes"
	"strings"
	"testing"

	"specdsm"
)

// Offline trace evaluation must reproduce online observer measurements
// exactly — this validates the whole capture path end to end.
func TestTraceCaptureAndOfflineEvaluation(t *testing.T) {
	w, err := specdsm.AppWorkload("em3d", specdsm.WorkloadParams{
		Nodes: 8, Iterations: 4, Scale: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	configs := []specdsm.PredictorConfig{
		{Kind: specdsm.Cosmos, Depth: 1},
		{Kind: specdsm.MSP, Depth: 1},
		{Kind: specdsm.VMSP, Depth: 1},
		{Kind: specdsm.VMSP, Depth: 2},
	}

	var buf bytes.Buffer
	online, sum, err := specdsm.CaptureTrace(w, specdsm.MachineOptions{
		Mode:      specdsm.ModeBase,
		Observers: configs,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Events == 0 || sum.Blocks == 0 || sum.Workload != "em3d" {
		t.Fatalf("summary = %+v", sum)
	}

	offline, sum2, err := specdsm.EvaluateTrace(&buf, configs)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Events != sum.Events {
		t.Fatalf("event counts differ: %d vs %d", sum2.Events, sum.Events)
	}
	if len(offline) != len(configs) {
		t.Fatalf("%d offline results", len(offline))
	}
	for i, cfg := range configs {
		on, ok := online.Predictor(cfg.Kind, cfg.Depth)
		if !ok {
			t.Fatalf("missing online result for %+v", cfg)
		}
		off := offline[i]
		if on.Tracked != off.Tracked || on.Predicted != off.Predicted || on.Correct != off.Correct {
			t.Fatalf("%v d=%d: online (%d,%d,%d) != offline (%d,%d,%d)",
				cfg.Kind, cfg.Depth,
				on.Tracked, on.Predicted, on.Correct,
				off.Tracked, off.Predicted, off.Correct)
		}
		if on.Entries != off.Entries || on.Blocks != off.Blocks {
			t.Fatalf("%v d=%d: census diverges", cfg.Kind, cfg.Depth)
		}
	}
}

func TestEvaluateTraceErrors(t *testing.T) {
	if _, _, err := specdsm.EvaluateTrace(strings.NewReader("garbage"), nil); err == nil {
		t.Fatal("expected decode error")
	}
	w, _ := specdsm.AppWorkload("ocean", specdsm.WorkloadParams{Nodes: 4, Iterations: 1, Scale: 0.25})
	var buf bytes.Buffer
	if _, _, err := specdsm.CaptureTrace(w, specdsm.MachineOptions{}, &buf); err != nil {
		t.Fatal(err)
	}
	if _, _, err := specdsm.EvaluateTrace(&buf,
		[]specdsm.PredictorConfig{{Kind: "Oracle", Depth: 1}}); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestCaptureTraceEmptyWorkload(t *testing.T) {
	var buf bytes.Buffer
	if _, _, err := specdsm.CaptureTrace(specdsm.Workload{}, specdsm.MachineOptions{}, &buf); err == nil {
		t.Fatal("expected empty-workload error")
	}
}
