package specdsm

import (
	"reflect"
	"testing"

	"specdsm/internal/machine"
)

// TestWideArenaRowEquivalence extends the arena-reuse contract of
// arena_equiv_test.go beyond the inline reader-vector tier: at N = 256
// and N = 1024 a machine reused through the arena must produce run
// results deep-equal to a freshly built one, across DSM modes. This pins
// both the wide-vector protocol paths and the predictor interner's
// clear-but-retain Reset.
func TestWideArenaRowEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("wide machines are slow in -short mode")
	}
	arena := machine.NewArena()
	for _, nodes := range []int{256, 1024} {
		w, err := AppWorkload("em3d", WorkloadParams{
			Nodes: nodes, Iterations: 2, Scale: 0.05, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeBase, ModeSWI} {
			opts := MachineOptions{Mode: mode}
			fresh, err := Run(w, opts)
			if err != nil {
				t.Fatalf("N=%d/%s fresh: %v", nodes, mode, err)
			}
			reused, err := runInArena(arena, w, opts)
			if err != nil {
				t.Fatalf("N=%d/%s arena: %v", nodes, mode, err)
			}
			if !reflect.DeepEqual(fresh, reused) {
				t.Errorf("N=%d/%s: arena row diverged from fresh build\nfresh:  %+v\nreused: %+v",
					nodes, mode, fresh, reused)
			}
			if fresh.SpecReadsFR+fresh.SpecReadsSWI == 0 && mode == ModeSWI {
				t.Logf("N=%d: no speculative activity (workload too small?)", nodes)
			}
		}
	}
}
